// Column-major dense matrix plus the small dense kernels needed by the
// multifrontal factorization (partial Cholesky of frontal matrices with
// extend-add) and by GMRES (Hessenberg least-squares via Givens rotations is
// in krylov/, but the coarse-space code uses gemm here).
//
// These play the role of the BLAS/LAPACK "team-level kernels" that Tacho
// dispatches on GPU fronts (Section V-B1).
#pragma once

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/op_profile.hpp"
#include "common/types.hpp"

namespace frosch::la {

template <class Scalar>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), Scalar(0)) {}

  index_t num_rows() const { return rows_; }
  index_t num_cols() const { return cols_; }

  Scalar& operator()(index_t i, index_t j) {
    FROSCH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "DenseMatrix index out of range");
    return data_[static_cast<size_t>(j) * rows_ + i];
  }
  Scalar operator()(index_t i, index_t j) const {
    FROSCH_ASSERT(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                  "DenseMatrix index out of range");
    return data_[static_cast<size_t>(j) * rows_ + i];
  }

  Scalar* data() { return data_.data(); }
  const Scalar* data() const { return data_.data(); }
  Scalar* col(index_t j) { return data_.data() + static_cast<size_t>(j) * rows_; }
  const Scalar* col(index_t j) const {
    return data_.data() + static_cast<size_t>(j) * rows_;
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), Scalar(0)); }

 private:
  index_t rows_ = 0, cols_ = 0;
  std::vector<Scalar> data_;
};

/// C += A * B (no transposition); naive triple loop, column-major friendly.
template <class Scalar>
void gemm_accum(const DenseMatrix<Scalar>& A, const DenseMatrix<Scalar>& B,
                DenseMatrix<Scalar>& C, Scalar alpha = Scalar(1),
                OpProfile* prof = nullptr) {
  FROSCH_CHECK(A.num_cols() == B.num_rows() && C.num_rows() == A.num_rows() &&
                   C.num_cols() == B.num_cols(),
               "gemm_accum: dimension mismatch");
  for (index_t j = 0; j < B.num_cols(); ++j) {
    for (index_t k = 0; k < A.num_cols(); ++k) {
      const Scalar bkj = alpha * B(k, j);
      if (bkj == Scalar(0)) continue;
      for (index_t i = 0; i < A.num_rows(); ++i) C(i, j) += A(i, k) * bkj;
    }
  }
  if (prof) {
    prof->flops += 2.0 * double(A.num_rows()) * double(A.num_cols()) *
                   double(B.num_cols());
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += double(A.num_rows()) * double(B.num_cols());
  }
}

/// In-place partial Cholesky of the leading k x k block of a symmetric
/// (k+r) x (k+r) frontal matrix F, updating the trailing r x r block with the
/// Schur complement.  On return the lower leading block holds L (including
/// the sqrt diagonal), the off-diagonal block holds L21 = A21 * L11^{-T}, and
/// the LOWER TRIANGLE of the trailing block holds A22 - L21 * L21^T (the
/// upper triangle is not referenced or updated, as in LAPACK 'L' routines).
/// Throws on a non-positive pivot.
template <class Scalar>
void partial_cholesky(DenseMatrix<Scalar>& F, index_t k,
                      OpProfile* prof = nullptr) {
  const index_t n = F.num_rows();
  FROSCH_CHECK(F.num_cols() == n && k <= n, "partial_cholesky: bad dims");
  double flops = 0.0;
  for (index_t j = 0; j < k; ++j) {
    Scalar d = F(j, j);
    FROSCH_CHECK(d > Scalar(0), "partial_cholesky: non-positive pivot at "
                                    << j << " (" << d << ")");
    d = std::sqrt(d);
    F(j, j) = d;
    for (index_t i = j + 1; i < n; ++i) F(i, j) /= d;
    for (index_t c = j + 1; c < n; ++c) {
      const Scalar ljc = F(c, j);
      if (ljc == Scalar(0)) continue;
      for (index_t i = c; i < n; ++i) F(i, c) -= F(i, j) * ljc;
    }
    flops += 2.0 * double(n - j) * double(n - j);
  }
  if (prof) {
    prof->flops += flops;
    prof->bytes += double(n) * double(n) * sizeof(Scalar);
    prof->launches += 3;  // potrf + trsm + syrk as a GPU would batch them
    prof->critical_path += 3;
    prof->work_items += double(n) * double(n);
  }
}

/// Dense LU with partial pivoting (for the coarse problem fallback and
/// tests).  Overwrites A with L\U, fills piv with row swaps.
template <class Scalar>
void lu_factor(DenseMatrix<Scalar>& A, IndexVector& piv) {
  const index_t n = A.num_rows();
  FROSCH_CHECK(A.num_cols() == n, "lu_factor: square only");
  piv.resize(static_cast<size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    index_t p = j;
    Scalar best = std::abs(A(j, j));
    for (index_t i = j + 1; i < n; ++i) {
      if (std::abs(A(i, j)) > best) {
        best = std::abs(A(i, j));
        p = i;
      }
    }
    FROSCH_CHECK(best > Scalar(0), "lu_factor: singular at column " << j);
    piv[j] = p;
    if (p != j)
      for (index_t c = 0; c < n; ++c) std::swap(A(j, c), A(p, c));
    const Scalar d = A(j, j);
    for (index_t i = j + 1; i < n; ++i) {
      const Scalar lij = A(i, j) / d;
      A(i, j) = lij;
      for (index_t c = j + 1; c < n; ++c) A(i, c) -= lij * A(j, c);
    }
  }
}

/// Solves A x = b given lu_factor output; b is overwritten with x.
template <class Scalar>
void lu_solve(const DenseMatrix<Scalar>& LU, const IndexVector& piv,
              std::vector<Scalar>& b) {
  const index_t n = LU.num_rows();
  for (index_t j = 0; j < n; ++j)
    if (piv[j] != j) std::swap(b[j], b[piv[j]]);
  for (index_t j = 0; j < n; ++j) {
    const Scalar xj = b[j];
    for (index_t i = j + 1; i < n; ++i) b[i] -= LU(i, j) * xj;
  }
  for (index_t j = n - 1; j >= 0; --j) {
    b[j] /= LU(j, j);
    const Scalar xj = b[j];
    for (index_t i = 0; i < j; ++i) b[i] -= LU(i, j) * xj;
  }
}

}  // namespace frosch::la
