// Structural sparse operations: transpose, add, SpGEMM (Gustavson), symmetric
// permutation, and index-set submatrix extraction.
//
// SpGEMM is the kernel behind the Galerkin coarse-matrix product
// A0 = Phi^T A Phi; the paper's Fig. 4 attributes a visible share of the
// GPU setup time to it ("black part of the bar"), so it is instrumented like
// every other kernel.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/op_profile.hpp"
#include "la/csr.hpp"

namespace frosch::la {

/// B = A^T.  Two-pass counting transpose; O(nnz).
template <class Scalar>
CsrMatrix<Scalar> transpose(const CsrMatrix<Scalar>& A,
                            OpProfile* prof = nullptr) {
  const index_t m = A.num_rows(), n = A.num_cols();
  std::vector<index_t> rowptr(static_cast<size_t>(n) + 1, 0);
  for (count_t k = 0; k < A.num_entries(); ++k)
    rowptr[static_cast<size_t>(A.col(static_cast<index_t>(k))) + 1]++;
  for (index_t i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];

  std::vector<index_t> colind(static_cast<size_t>(A.num_entries()));
  std::vector<Scalar> values(static_cast<size_t>(A.num_entries()));
  std::vector<index_t> next(rowptr.begin(), rowptr.end() - 1);
  for (index_t i = 0; i < m; ++i) {
    for (index_t k = A.row_begin(i); k < A.row_end(i); ++k) {
      const index_t pos = next[A.col(k)]++;
      colind[pos] = i;
      values[pos] = A.val(k);
    }
  }
  if (prof) {
    prof->bytes += 2.0 * A.storage_bytes();
    prof->launches += 2;
    prof->critical_path += 2;
    prof->work_items += 2.0 * static_cast<double>(m);
  }
  return CsrMatrix<Scalar>(n, m, std::move(rowptr), std::move(colind),
                           std::move(values));
}

/// C = alpha*A + beta*B (same dimensions; union pattern, merged rows).
template <class Scalar>
CsrMatrix<Scalar> add(const CsrMatrix<Scalar>& A, const CsrMatrix<Scalar>& B,
                      Scalar alpha = Scalar(1), Scalar beta = Scalar(1)) {
  FROSCH_CHECK(A.num_rows() == B.num_rows() && A.num_cols() == B.num_cols(),
               "add: dimension mismatch");
  std::vector<index_t> rowptr(static_cast<size_t>(A.num_rows()) + 1, 0);
  std::vector<index_t> colind;
  std::vector<Scalar> values;
  colind.reserve(static_cast<size_t>(A.num_entries() + B.num_entries()));
  values.reserve(colind.capacity());
  for (index_t i = 0; i < A.num_rows(); ++i) {
    index_t ka = A.row_begin(i), kb = B.row_begin(i);
    const index_t ea = A.row_end(i), eb = B.row_end(i);
    while (ka < ea || kb < eb) {
      index_t ca = ka < ea ? A.col(ka) : A.num_cols();
      index_t cb = kb < eb ? B.col(kb) : B.num_cols();
      if (ca < cb) {
        colind.push_back(ca);
        values.push_back(alpha * A.val(ka++));
      } else if (cb < ca) {
        colind.push_back(cb);
        values.push_back(beta * B.val(kb++));
      } else {
        colind.push_back(ca);
        values.push_back(alpha * A.val(ka++) + beta * B.val(kb++));
      }
    }
    rowptr[i + 1] = static_cast<index_t>(colind.size());
  }
  return CsrMatrix<Scalar>(A.num_rows(), A.num_cols(), std::move(rowptr),
                           std::move(colind), std::move(values));
}

/// C = A * B via Gustavson's row-wise algorithm with a dense scratch
/// accumulator; symbolic + numeric in one pass per row.
template <class Scalar>
CsrMatrix<Scalar> spgemm(const CsrMatrix<Scalar>& A, const CsrMatrix<Scalar>& B,
                         OpProfile* prof = nullptr) {
  FROSCH_CHECK(A.num_cols() == B.num_rows(), "spgemm: inner dim mismatch");
  const index_t m = A.num_rows(), n = B.num_cols();
  std::vector<index_t> rowptr(static_cast<size_t>(m) + 1, 0);
  std::vector<index_t> colind;
  std::vector<Scalar> values;

  std::vector<Scalar> accum(static_cast<size_t>(n), Scalar(0));
  std::vector<index_t> marker(static_cast<size_t>(n), -1);
  std::vector<index_t> row_cols;
  double flops = 0.0;

  for (index_t i = 0; i < m; ++i) {
    row_cols.clear();
    for (index_t ka = A.row_begin(i); ka < A.row_end(i); ++ka) {
      const index_t j = A.col(ka);
      const Scalar aij = A.val(ka);
      for (index_t kb = B.row_begin(j); kb < B.row_end(j); ++kb) {
        const index_t c = B.col(kb);
        if (marker[c] != i) {
          marker[c] = i;
          accum[c] = aij * B.val(kb);
          row_cols.push_back(c);
        } else {
          accum[c] += aij * B.val(kb);
        }
        flops += 2.0;
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (index_t c : row_cols) {
      colind.push_back(c);
      values.push_back(accum[c]);
    }
    rowptr[i + 1] = static_cast<index_t>(colind.size());
  }
  if (prof) {
    prof->flops += flops;
    prof->bytes += A.storage_bytes() + B.storage_bytes() +
                   static_cast<double>(colind.size()) *
                       (sizeof(index_t) + sizeof(Scalar));
    prof->launches += 2;  // symbolic + numeric passes on a GPU implementation
    prof->critical_path += 2;
    prof->work_items += 2.0 * static_cast<double>(m);
  }
  return CsrMatrix<Scalar>(m, n, std::move(rowptr), std::move(colind),
                           std::move(values));
}

/// Symmetric permutation B = A(p, p), where p maps NEW index -> OLD index
/// (i.e. B(i, j) = A(p[i], p[j])).
template <class Scalar>
CsrMatrix<Scalar> permute_symmetric(const CsrMatrix<Scalar>& A,
                                    const IndexVector& perm) {
  FROSCH_CHECK(A.num_rows() == A.num_cols(), "permute_symmetric: square only");
  const index_t n = A.num_rows();
  FROSCH_CHECK(static_cast<index_t>(perm.size()) == n,
               "permute_symmetric: perm size mismatch");
  IndexVector inv(static_cast<size_t>(n));
  for (index_t i = 0; i < n; ++i) inv[perm[i]] = i;

  std::vector<index_t> rowptr(static_cast<size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i)
    rowptr[static_cast<size_t>(i) + 1] = A.row_nnz(perm[i]);
  for (index_t i = 0; i < n; ++i) rowptr[i + 1] += rowptr[i];

  std::vector<index_t> colind(static_cast<size_t>(A.num_entries()));
  std::vector<Scalar> values(static_cast<size_t>(A.num_entries()));
  for (index_t i = 0; i < n; ++i) {
    index_t pos = rowptr[i];
    const index_t old = perm[i];
    for (index_t k = A.row_begin(old); k < A.row_end(old); ++k) {
      colind[pos] = inv[A.col(k)];
      values[pos] = A.val(k);
      ++pos;
    }
  }
  return CsrMatrix<Scalar>(n, n, std::move(rowptr), std::move(colind),
                           std::move(values));
}

/// Extracts the submatrix A(rows, cols).  `cols` is given as a global->local
/// map built internally; complexity O(sum of extracted row lengths).
/// `entry_map` (optional) receives, per extracted entry in order, the index
/// of the source entry in A's value array -- the numeric overlay map that
/// lets refresh_submatrix_values re-copy values without re-deriving the
/// structure (DESIGN.md section 9).
template <class Scalar>
CsrMatrix<Scalar> extract_submatrix(const CsrMatrix<Scalar>& A,
                                    const IndexVector& rows,
                                    const IndexVector& cols,
                                    IndexVector* entry_map = nullptr) {
  IndexVector col_map(static_cast<size_t>(A.num_cols()), -1);
  for (size_t j = 0; j < cols.size(); ++j)
    col_map[cols[j]] = static_cast<index_t>(j);

  if (entry_map) entry_map->clear();
  std::vector<index_t> rowptr(rows.size() + 1, 0);
  std::vector<index_t> colind;
  std::vector<Scalar> values;
  for (size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    for (index_t k = A.row_begin(r); k < A.row_end(r); ++k) {
      const index_t lc = col_map[A.col(k)];
      if (lc >= 0) {
        colind.push_back(lc);
        values.push_back(A.val(k));
        if (entry_map) entry_map->push_back(k);
      }
    }
    rowptr[i + 1] = static_cast<index_t>(colind.size());
  }
  return CsrMatrix<Scalar>(static_cast<index_t>(rows.size()),
                           static_cast<index_t>(cols.size()), std::move(rowptr),
                           std::move(colind), std::move(values));
}

/// Copies A's current values into a previously extracted submatrix through
/// its entry map, touching only the value array (the submatrix pattern and
/// its storage addresses stay put).  Produces exactly the values a fresh
/// extract_submatrix of the same index sets would.
template <class Scalar>
void refresh_submatrix_values(const CsrMatrix<Scalar>& A,
                              const IndexVector& entry_map,
                              CsrMatrix<Scalar>& sub) {
  FROSCH_CHECK(entry_map.size() == static_cast<size_t>(sub.num_entries()),
               "refresh_submatrix_values: entry map/submatrix mismatch");
  auto& vals = sub.values();
  for (size_t q = 0; q < entry_map.size(); ++q) vals[q] = A.val(entry_map[q]);
}

/// Row restriction A(rows, :) keeping all columns.
template <class Scalar>
CsrMatrix<Scalar> extract_rows(const CsrMatrix<Scalar>& A,
                               const IndexVector& rows) {
  std::vector<index_t> rowptr(rows.size() + 1, 0);
  std::vector<index_t> colind;
  std::vector<Scalar> values;
  for (size_t i = 0; i < rows.size(); ++i) {
    const index_t r = rows[i];
    for (index_t k = A.row_begin(r); k < A.row_end(r); ++k) {
      colind.push_back(A.col(k));
      values.push_back(A.val(k));
    }
    rowptr[i + 1] = static_cast<index_t>(colind.size());
  }
  return CsrMatrix<Scalar>(static_cast<index_t>(rows.size()), A.num_cols(),
                           std::move(rowptr), std::move(colind),
                           std::move(values));
}

/// Frobenius-norm of A*x - b residual helper used across tests.
template <class Scalar>
double residual_norm(const CsrMatrix<Scalar>& A, const std::vector<Scalar>& x,
                     const std::vector<Scalar>& b) {
  double nrm = 0.0;
  for (index_t i = 0; i < A.num_rows(); ++i) {
    Scalar sum(0);
    for (index_t k = A.row_begin(i); k < A.row_end(i); ++k)
      sum += A.val(k) * x[A.col(k)];
    const double r = static_cast<double>(sum - b[static_cast<size_t>(i)]);
    nrm += r * r;
  }
  return std::sqrt(nrm);
}

}  // namespace frosch::la
