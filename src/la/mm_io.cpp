#include "la/mm_io.hpp"

#include <fstream>
#include <sstream>

namespace frosch::la {

CsrMatrix<double> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  FROSCH_CHECK(in.good(), "read_matrix_market: cannot open " << path);
  std::string line;
  FROSCH_CHECK(static_cast<bool>(std::getline(in, line)),
               "read_matrix_market: empty file");
  FROSCH_CHECK(line.rfind("%%MatrixMarket", 0) == 0,
               "read_matrix_market: missing header in " << path);
  const bool symmetric = line.find("symmetric") != std::string::npos;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  index_t m = 0, n = 0;
  count_t nnz = 0;
  dims >> m >> n >> nnz;
  FROSCH_CHECK(m > 0 && n > 0, "read_matrix_market: bad dimensions");

  TripletBuilder<double> builder(m, n);
  for (count_t k = 0; k < nnz; ++k) {
    index_t i = 0, j = 0;
    double v = 0.0;
    in >> i >> j >> v;
    FROSCH_CHECK(in.good() || in.eof(), "read_matrix_market: truncated file");
    builder.add(i - 1, j - 1, v);
    if (symmetric && i != j) builder.add(j - 1, i - 1, v);
  }
  return builder.build();
}

void write_matrix_market(const std::string& path, const CsrMatrix<double>& A) {
  std::ofstream out(path);
  FROSCH_CHECK(out.good(), "write_matrix_market: cannot open " << path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << A.num_rows() << " " << A.num_cols() << " " << A.num_entries() << "\n";
  out.precision(17);
  for (index_t i = 0; i < A.num_rows(); ++i) {
    for (index_t k = A.row_begin(i); k < A.row_end(i); ++k) {
      out << (i + 1) << " " << (A.col(k) + 1) << " " << A.val(k) << "\n";
    }
  }
}

}  // namespace frosch::la
