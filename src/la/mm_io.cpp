#include "la/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace frosch::la {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return s;
}

}  // namespace

CsrMatrix<double> read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  FROSCH_CHECK(in.good(), "read_matrix_market: cannot open " << path);
  std::string line;
  FROSCH_CHECK(static_cast<bool>(std::getline(in, line)),
               "read_matrix_market: empty file " << path);
  FROSCH_CHECK(line.rfind("%%MatrixMarket", 0) == 0,
               "read_matrix_market: missing %%MatrixMarket banner in " << path);

  // Banner: %%MatrixMarket object format field symmetry
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  FROSCH_CHECK(object == "matrix",
               "read_matrix_market: unsupported object '" << object << "' in "
                                                          << path);
  FROSCH_CHECK(format == "coordinate",
               "read_matrix_market: only coordinate format is supported, got '"
                   << format << "' in " << path);
  const bool pattern = field == "pattern";
  FROSCH_CHECK(field == "real" || field == "integer" || pattern,
               "read_matrix_market: unsupported field '" << field << "' in "
                                                         << path);
  const bool symmetric = symmetry == "symmetric";
  FROSCH_CHECK(symmetric || symmetry == "general",
               "read_matrix_market: unsupported symmetry '"
                   << symmetry << "' in " << path);

  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  index_t m = 0, n = 0;
  count_t nnz = 0;
  dims >> m >> n >> nnz;
  FROSCH_CHECK(!dims.fail() && m > 0 && n > 0 && nnz >= 0,
               "read_matrix_market: bad size line '" << line << "' in "
                                                     << path);

  TripletBuilder<double> builder(m, n);
  for (count_t k = 0; k < nnz; ++k) {
    index_t i = 0, j = 0;
    double v = 1.0;
    in >> i >> j;
    if (!pattern) in >> v;
    FROSCH_CHECK(!in.fail(), "read_matrix_market: truncated file " << path);
    FROSCH_CHECK(i >= 1 && i <= m && j >= 1 && j <= n,
                 "read_matrix_market: entry (" << i << "," << j
                                               << ") out of range in " << path);
    builder.add(i - 1, j - 1, v);
    if (symmetric && i != j) builder.add(j - 1, i - 1, v);
  }
  return builder.build();
}

void write_matrix_market(const std::string& path, const CsrMatrix<double>& A) {
  std::ofstream out(path);
  FROSCH_CHECK(out.good(), "write_matrix_market: cannot open " << path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << A.num_rows() << " " << A.num_cols() << " " << A.num_entries() << "\n";
  out.precision(17);
  for (index_t i = 0; i < A.num_rows(); ++i) {
    for (index_t k = A.row_begin(i); k < A.row_end(i); ++k) {
      out << (i + 1) << " " << (A.col(k) + 1) << " " << A.val(k) << "\n";
    }
  }
}

}  // namespace frosch::la
