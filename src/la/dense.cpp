#include "common/half.hpp"
#include "la/dense.hpp"

namespace frosch::la {

template class DenseMatrix<double>;
template class DenseMatrix<float>;
template class DenseMatrix<half>;

}  // namespace frosch::la
