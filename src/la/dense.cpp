#include "la/dense.hpp"

namespace frosch::la {

template class DenseMatrix<double>;
template class DenseMatrix<float>;

}  // namespace frosch::la
