// Dense vector kernels (axpy/dot/norm/scale) with profile instrumentation.
//
// Dot products additionally record a global reduction: the collective model
// charges one all-reduce latency per `reductions` increment, which is exactly
// the cost the single-reduce GMRES variant (Section I, Table I) is designed
// to amortize.
#pragma once

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/op_profile.hpp"
#include "common/types.hpp"

namespace frosch::la {

template <class Scalar>
void axpy(Scalar alpha, const std::vector<Scalar>& x, std::vector<Scalar>& y,
          OpProfile* prof = nullptr) {
  FROSCH_ASSERT(x.size() == y.size(), "axpy: size mismatch");
  for (size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
  if (prof) {
    prof->flops += 2.0 * static_cast<double>(x.size());
    prof->bytes += 3.0 * static_cast<double>(x.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(x.size());
  }
}

template <class Scalar>
void scale(std::vector<Scalar>& x, Scalar alpha, OpProfile* prof = nullptr) {
  for (auto& v : x) v *= alpha;
  if (prof) {
    prof->flops += static_cast<double>(x.size());
    prof->bytes += 2.0 * static_cast<double>(x.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(x.size());
  }
}

/// Local dot product + one modeled global reduction.
template <class Scalar>
Scalar dot(const std::vector<Scalar>& x, const std::vector<Scalar>& y,
           OpProfile* prof = nullptr) {
  FROSCH_ASSERT(x.size() == y.size(), "dot: size mismatch");
  Scalar s(0);
  for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  if (prof) {
    prof->flops += 2.0 * static_cast<double>(x.size());
    prof->bytes += 2.0 * static_cast<double>(x.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(x.size());
    prof->reductions += 1;
  }
  return s;
}

template <class Scalar>
Scalar norm2(const std::vector<Scalar>& x, OpProfile* prof = nullptr) {
  return std::sqrt(dot(x, x, prof));
}

/// Fused multi-dot: k dot products against a common vector, one reduction.
/// This is the kernel the single-reduce orthogonalization relies on.
template <class Scalar>
void multi_dot(const std::vector<std::vector<Scalar>>& vs,
               const std::vector<Scalar>& w, std::vector<Scalar>& out,
               OpProfile* prof = nullptr) {
  out.resize(vs.size());
  for (size_t j = 0; j < vs.size(); ++j) {
    FROSCH_ASSERT(vs[j].size() == w.size(), "multi_dot: size mismatch");
    Scalar s(0);
    for (size_t i = 0; i < w.size(); ++i) s += vs[j][i] * w[i];
    out[j] = s;
  }
  if (prof) {
    prof->flops += 2.0 * static_cast<double>(vs.size()) *
                   static_cast<double>(w.size());
    prof->bytes += (static_cast<double>(vs.size()) + 1.0) *
                   static_cast<double>(w.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(w.size());
    prof->reductions += 1;  // all k partial sums travel in ONE all-reduce
  }
}

}  // namespace frosch::la
