// Dense vector kernels (axpy/dot/norm/scale) with profile instrumentation.
//
// Dot products additionally record a global reduction: the collective model
// charges one all-reduce latency per `reductions` increment, which is exactly
// the cost the single-reduce GMRES variant (Section I, Table I) is designed
// to amortize.
//
// All kernels execute through the exec layer.  Elementwise kernels are
// bitwise reproducible at any thread count (disjoint writes); reductions use
// exec::parallel_reduce's fixed chunk decomposition, so dot/norm2/multi_dot
// are ALSO bitwise identical across thread counts including serial -- the
// property the equivalence tests in test_exec assert.
#pragma once

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/op_profile.hpp"
#include "common/types.hpp"
#include "device/arena.hpp"
#include "exec/exec.hpp"

namespace frosch::la {

template <class Scalar>
void axpy(Scalar alpha, const std::vector<Scalar>& x, std::vector<Scalar>& y,
          OpProfile* prof = nullptr, const exec::ExecPolicy& policy = {}) {
  FROSCH_ASSERT(x.size() == y.size(), "axpy: size mismatch");
  exec::parallel_for(policy, static_cast<index_t>(x.size()),
                     [&](index_t i) { y[i] += alpha * x[i]; });
  device::launches(policy, 1);
  if (prof) {
    prof->flops += 2.0 * static_cast<double>(x.size());
    prof->bytes += 3.0 * static_cast<double>(x.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(x.size());
  }
}

template <class Scalar>
void scale(std::vector<Scalar>& x, Scalar alpha, OpProfile* prof = nullptr,
           const exec::ExecPolicy& policy = {}) {
  exec::parallel_for(policy, static_cast<index_t>(x.size()),
                     [&](index_t i) { x[i] *= alpha; });
  device::launches(policy, 1);
  if (prof) {
    prof->flops += static_cast<double>(x.size());
    prof->bytes += 2.0 * static_cast<double>(x.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(x.size());
  }
}

/// Local dot product + one modeled global reduction.
template <class Scalar>
Scalar dot(const std::vector<Scalar>& x, const std::vector<Scalar>& y,
           OpProfile* prof = nullptr, const exec::ExecPolicy& policy = {}) {
  FROSCH_ASSERT(x.size() == y.size(), "dot: size mismatch");
  const Scalar s = exec::parallel_reduce<Scalar>(
      policy, static_cast<index_t>(x.size()), [&](index_t b, index_t e) {
        Scalar p(0);
        for (index_t i = b; i < e; ++i) p += x[i] * y[i];
        return p;
      });
  device::launches(policy, 1);
  if (prof) {
    prof->flops += 2.0 * static_cast<double>(x.size());
    prof->bytes += 2.0 * static_cast<double>(x.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(x.size());
    prof->reductions += 1;
  }
  return s;
}

template <class Scalar>
Scalar norm2(const std::vector<Scalar>& x, OpProfile* prof = nullptr,
             const exec::ExecPolicy& policy = {}) {
  return std::sqrt(dot(x, x, prof, policy));
}

/// Fused multi-dot: k dot products against a common vector, one reduction.
/// This is the kernel the single-reduce orthogonalization relies on.
/// Parallelized by chunking the vector length (k is small -- the GMRES
/// basis size); per-chunk partial sum vectors are combined in chunk order,
/// so results are bitwise identical at every thread count.
template <class Scalar>
void multi_dot(const std::vector<std::vector<Scalar>>& vs,
               const std::vector<Scalar>& w, std::vector<Scalar>& out,
               OpProfile* prof = nullptr, const exec::ExecPolicy& policy = {}) {
  const size_t k = vs.size();
  for (size_t j = 0; j < k; ++j)
    FROSCH_ASSERT(vs[j].size() == w.size(), "multi_dot: size mismatch");
  const index_t n = static_cast<index_t>(w.size());
  const index_t nc = exec::chunk_count(n);
  std::vector<std::vector<Scalar>> partial(static_cast<size_t>(nc));
  exec::parallel_for(
      policy, nc,
      [&](index_t c) {
        auto& pc = partial[c];
        pc.assign(k, Scalar(0));
        const auto [b, e] = exec::chunk_range(n, nc, c);
        for (size_t j = 0; j < k; ++j) {
          const Scalar* vj = vs[j].data();
          Scalar s(0);
          for (index_t i = b; i < e; ++i) s += vj[i] * w[i];
          pc[j] = s;
        }
      },
      /*grain=*/1);
  out.assign(k, Scalar(0));
  for (index_t c = 0; c < nc; ++c)
    for (size_t j = 0; j < k; ++j) out[j] += partial[c][j];
  device::launches(policy, 1);
  if (prof) {
    prof->flops += 2.0 * static_cast<double>(vs.size()) *
                   static_cast<double>(w.size());
    prof->bytes += (static_cast<double>(vs.size()) + 1.0) *
                   static_cast<double>(w.size()) * sizeof(Scalar);
    prof->launches += 1;
    prof->critical_path += 1;
    prof->work_items += static_cast<double>(w.size());
    prof->reductions += 1;  // all k partial sums travel in ONE all-reduce
  }
}

}  // namespace frosch::la
